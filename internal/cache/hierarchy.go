package cache

import (
	"pimsim/internal/addr"
	"pimsim/internal/config"
	"pimsim/internal/hmc"
	"pimsim/internal/sim"
	"pimsim/internal/stats"
)

// Hierarchy is the coherent three-level inclusive cache hierarchy:
// per-core private L1D and L2, a crossbar, and a banked shared L3 with
// directory bits (sharer masks) implementing MESI among the private
// caches. Misses go to the HMC chain.
//
// It also provides the two primitives the PMU needs for memory-side PEI
// coherence: BackInvalidate (writer PEIs) and BackWriteback (reader
// PEIs).
type Hierarchy struct {
	k     sim.Scheduler
	cfg   *config.Config
	chain *hmc.Chain
	reg   *stats.Registry

	l1, l2 []*Cache // per core
	l3     []*Cache // per bank

	coreOut []*sim.Link // per-core request port into the crossbar
	coreIn  []*sim.Link // per-core response port out of the crossbar
	bankSrv []*sim.Link // per-bank L3 service port

	privMSHR []map[uint64]*privMSHR // per core, keyed by block
	// privPend with privPendHead is a per-core head-indexed FIFO of
	// requests waiting for an MSHR slot (reset, retaining capacity, when
	// drained so churn never reallocates).
	privPend     [][]pendReq
	privPendHead []int
	l3MSHR       []map[uint64]*l3MSHR // per bank, keyed by block
	perBankMSHRs int

	// Free lists for the pooled transaction records that replace the
	// closure chains of the event hot path; see DESIGN.md §11.
	freeAccess []*accessTxn //peilint:allow snapcomplete pool of recycled records: capacity, not simulated state
	freePriv   []*privMSHR  //peilint:allow snapcomplete pool of recycled records: capacity, not simulated state
	freeL3     []*l3MSHR    //peilint:allow snapcomplete pool of recycled records: capacity, not simulated state
	freeCoh    []*cohTxn    //peilint:allow snapcomplete pool of recycled records: capacity, not simulated state

	// Pre-resolved counter handles: every per-event increment on the
	// simulated hot path goes through one of these, never a string key.
	cL1Hits, cL1Misses, cL1Writebacks        stats.Handle
	cL2Hits, cL2Misses, cL2Writebacks        stats.Handle
	cL2Prefetches, cL2MSHRMerges             stats.Handle
	cL2MSHRStalls                            stats.Handle
	cL3Hits, cL3Misses, cL3Writebacks        stats.Handle
	cL3MSHRMerges, cL3MSHRStalls             stats.Handle
	cL3OrphanWritebacks, cL3BackInvals       stats.Handle
	cCohUpgrades, cCohInvals, cCohDowngrades stats.Handle
	cPMUBackWritebacks, cPMUBackInvals       stats.Handle

	// OnL3Access, if non-nil, observes every L3 lookup (hit or miss) by
	// block number. The PMU's locality monitor hangs off this hook.
	OnL3Access func(blk uint64)

	// AccessLatency records the retire latency of every Access call
	// (loads and stores alike), bucketed at L1/L2/L3/memory scales.
	AccessLatency *stats.Histogram
}

// accessTxn is a pooled load/store walking the private levels: L1
// lookup, L2 lookup, retire. The hierarchy owns the pool; the retire
// stage releases the record before invoking the caller's continuation.
type accessTxn struct {
	h     *Hierarchy
	core  int
	a     uint64
	blk   uint64
	write bool
	start sim.Cycle
	done  sim.Cont
}

const (
	acStageL1     = iota // L1 array latency elapsed; look up
	acStageL2            // L2 array latency elapsed; look up
	acStageRetire        // access complete: observe latency, notify caller
)

func (t *accessTxn) OnEvent(arg sim.EventArg) {
	switch arg.N {
	case acStageL1:
		t.h.accessL1(t)
	case acStageL2:
		t.h.accessL2(t)
	default:
		t.h.retireAccess(t)
	}
}

// privWaiter is one request merged into a private MSHR.
type privWaiter struct {
	write bool
	done  sim.Cont
}

// pendReq is a request parked behind a full private MSHR file; it is
// retried from scratch when a slot frees.
type pendReq struct {
	blk   uint64
	write bool
	done  sim.Cont
}

// privMSHR is a pooled private-cache miss transaction: it is both the
// MSHR entry (merge target) and the handler carrying the miss across
// the crossbar, through the L3 bank, and back with the fill. The
// hierarchy releases it in the fill stage.
type privMSHR struct {
	h         *Hierarchy
	core      int
	blk       uint64
	write     bool // ownership requested when the L3 access was launched
	exclusive bool // response: requester will be the sole sharer
	waiters   []privWaiter
}

const (
	pmStageAtXbar  = iota // request header crossed the crossbar
	pmStageAtBank         // bank service slot granted
	pmStageLookup         // L3 array latency elapsed; run the lookup
	pmStageRespond        // bank sources the data; send the response
	pmStageFill           // response at the core: fill, retire waiters
)

func (m *privMSHR) OnEvent(arg sim.EventArg) {
	h := m.h
	switch arg.N {
	case pmStageAtXbar:
		h.bankSrv[h.bankOf(m.blk)].SendEvent(1, m, sim.EventArg{N: pmStageAtBank})
	case pmStageAtBank:
		h.k.ScheduleEvent(h.cfg.L3.LatencyCycles, m, sim.EventArg{N: pmStageLookup})
	case pmStageLookup:
		h.l3Access(m)
	case pmStageRespond:
		h.completePrivateMiss(m)
	default:
		h.finishPrivateMiss(m)
	}
}

// l3MSHR is a pooled L3 miss transaction; its event fires when the
// memory read returns, filling the bank and all merged private misses.
type l3MSHR struct {
	h       *Hierarchy
	bank    int
	blk     uint64
	waiters []*privMSHR
}

func (m *l3MSHR) OnEvent(sim.EventArg) { m.h.fillL3(m) }

// cohTxn is a pooled PMU coherence request (BackWriteback or
// BackInvalidate) crossing the L3 and, when dirty data exists, memory.
type cohTxn struct {
	h     *Hierarchy
	a     uint64
	inval bool
	done  sim.Cont
}

const (
	cohStageLookup = iota // L3 latency elapsed; flush or invalidate
	cohStageDone          // memory write restored; notify the PMU
)

func (t *cohTxn) OnEvent(arg sim.EventArg) {
	switch arg.N {
	case cohStageLookup:
		t.h.backCohLookup(t)
	default:
		done := t.done
		t.h.putCoh(t)
		done.Invoke()
	}
}

// l3DirtyNotice is the hierarchy acting as the handler for dirty-victim
// writeback messages arriving at the L3; the victim block rides in
// arg.N so the notification needs no transaction record.
type l3DirtyNotice Hierarchy

func (h *l3DirtyNotice) OnEvent(arg sim.EventArg) {
	(*Hierarchy)(h).markL3Dirty(uint64(arg.N))
}

// NewHierarchy builds the hierarchy for cfg over the given memory chain.
func NewHierarchy(k sim.Scheduler, cfg *config.Config, chain *hmc.Chain, reg *stats.Registry) *Hierarchy {
	h := &Hierarchy{k: k, cfg: cfg, chain: chain, reg: reg}
	for i := 0; i < cfg.Cores; i++ {
		h.l1 = append(h.l1, New(cfg.L1.Sets(), cfg.L1.Ways))
		h.l2 = append(h.l2, New(cfg.L2.Sets(), cfg.L2.Ways))
		h.coreOut = append(h.coreOut, sim.NewLink(k, cfg.NoCBytesPerCycle, cfg.NoCLatency))
		h.coreIn = append(h.coreIn, sim.NewLink(k, cfg.NoCBytesPerCycle, cfg.NoCLatency))
		h.privMSHR = append(h.privMSHR, make(map[uint64]*privMSHR))
		h.privPend = append(h.privPend, nil)
		h.privPendHead = append(h.privPendHead, 0)
	}
	setsPerBank := cfg.L3.Sets() / cfg.L3Banks
	for b := 0; b < cfg.L3Banks; b++ {
		h.l3 = append(h.l3, New(setsPerBank, cfg.L3.Ways))
		// A bank accepts one access per 2 CPU cycles (2 GHz array).
		h.bankSrv = append(h.bankSrv, sim.NewLink(k, 0.5, 0))
		h.l3MSHR = append(h.l3MSHR, make(map[uint64]*l3MSHR))
	}
	h.perBankMSHRs = cfg.L3.MSHRs / cfg.L3Banks
	if h.perBankMSHRs < 1 {
		h.perBankMSHRs = 1
	}
	h.AccessLatency = stats.NewHistogram(4, 16, 64, 256, 1024, 4096)
	h.cL1Hits = reg.Counter("l1.hits")
	h.cL1Misses = reg.Counter("l1.misses")
	h.cL1Writebacks = reg.Counter("l1.writebacks")
	h.cL2Hits = reg.Counter("l2.hits")
	h.cL2Misses = reg.Counter("l2.misses")
	h.cL2Writebacks = reg.Counter("l2.writebacks")
	h.cL2Prefetches = reg.Counter("l2.prefetches")
	h.cL2MSHRMerges = reg.Counter("l2.mshr_merges")
	h.cL2MSHRStalls = reg.Counter("l2.mshr_stalls")
	h.cL3Hits = reg.Counter("l3.hits")
	h.cL3Misses = reg.Counter("l3.misses")
	h.cL3Writebacks = reg.Counter("l3.writebacks")
	h.cL3MSHRMerges = reg.Counter("l3.mshr_merges")
	h.cL3MSHRStalls = reg.Counter("l3.mshr_stalls")
	h.cL3OrphanWritebacks = reg.Counter("l3.orphan_writebacks")
	h.cL3BackInvals = reg.Counter("l3.back_invalidations")
	h.cCohUpgrades = reg.Counter("coh.upgrades")
	h.cCohInvals = reg.Counter("coh.invalidations")
	h.cCohDowngrades = reg.Counter("coh.downgrades")
	h.cPMUBackWritebacks = reg.Counter("pmu.back_writebacks")
	h.cPMUBackInvals = reg.Counter("pmu.back_invalidations")
	return h
}

func (h *Hierarchy) bankOf(blk uint64) int     { return int(blk % uint64(h.cfg.L3Banks)) }
func (h *Hierarchy) bankKey(blk uint64) uint64 { return blk / uint64(h.cfg.L3Banks) }
func blockAddr(blk uint64) uint64              { return blk << addr.BlockShift }

// L1 and L2 expose per-core caches; L3Bank exposes a bank (for tests and
// the locality monitor's geometry).
func (h *Hierarchy) L1(core int) *Cache  { return h.l1[core] }
func (h *Hierarchy) L2(core int) *Cache  { return h.l2[core] }
func (h *Hierarchy) L3Bank(b int) *Cache { return h.l3[b] }

// Pool accessors. Each record type parks a nil h field while free, so
// releasing the same record twice panics instead of corrupting the
// free list (see DESIGN.md §11 for the lifecycle rules).

func (h *Hierarchy) getAccess() *accessTxn {
	if n := len(h.freeAccess); n > 0 {
		t := h.freeAccess[n-1]
		h.freeAccess = h.freeAccess[:n-1]
		t.h = h
		return t
	}
	return &accessTxn{h: h}
}

func (h *Hierarchy) putAccess(t *accessTxn) {
	if t.h == nil {
		panic("cache: access transaction double-released")
	}
	*t = accessTxn{}
	h.freeAccess = append(h.freeAccess, t)
}

func (h *Hierarchy) getPriv() *privMSHR {
	if n := len(h.freePriv); n > 0 {
		m := h.freePriv[n-1]
		h.freePriv = h.freePriv[:n-1]
		m.h = h
		return m
	}
	return &privMSHR{h: h}
}

func (h *Hierarchy) putPriv(m *privMSHR) {
	if m.h == nil {
		panic("cache: private MSHR double-released")
	}
	waiters := m.waiters[:0]
	*m = privMSHR{waiters: waiters}
	h.freePriv = append(h.freePriv, m)
}

func (h *Hierarchy) getL3() *l3MSHR {
	if n := len(h.freeL3); n > 0 {
		m := h.freeL3[n-1]
		h.freeL3 = h.freeL3[:n-1]
		m.h = h
		return m
	}
	return &l3MSHR{h: h}
}

func (h *Hierarchy) putL3(m *l3MSHR) {
	if m.h == nil {
		panic("cache: L3 MSHR double-released")
	}
	waiters := m.waiters[:0]
	*m = l3MSHR{waiters: waiters}
	h.freeL3 = append(h.freeL3, m)
}

func (h *Hierarchy) getCoh() *cohTxn {
	if n := len(h.freeCoh); n > 0 {
		t := h.freeCoh[n-1]
		h.freeCoh = h.freeCoh[:n-1]
		t.h = h
		return t
	}
	return &cohTxn{h: h}
}

func (h *Hierarchy) putCoh(t *cohTxn) {
	if t.h == nil {
		panic("cache: coherence transaction double-released")
	}
	*t = cohTxn{}
	h.freeCoh = append(h.freeCoh, t)
}

// Access performs a load (write=false) or store (write=true) of the
// block containing a on behalf of core. done runs when the access
// retires (data available / ownership granted). Closure form of
// AccessEvent.
func (h *Hierarchy) Access(core int, a uint64, write bool, done func()) {
	h.AccessEvent(core, a, write, sim.Call(done))
}

// AccessEvent is the allocation-free form of Access: the walk's state
// lives in a pooled transaction instead of closure captures, and done
// is invoked when the access retires.
func (h *Hierarchy) AccessEvent(core int, a uint64, write bool, done sim.Cont) {
	t := h.getAccess()
	t.core = core
	t.a = a
	t.blk = addr.BlockOf(a)
	t.write = write
	t.start = h.k.Now()
	t.done = done
	h.k.ScheduleEvent(h.cfg.L1.LatencyCycles, t, sim.EventArg{N: acStageL1})
}

func (h *Hierarchy) accessL1(t *accessTxn) {
	core, blk, write := t.core, t.blk, t.write
	if l := h.l1[core].Lookup(blk); l != nil {
		h.cL1Hits.Inc()
		if !write || l.State >= Exclusive {
			if write {
				l.State = Modified
				l.Dirty = true
			}
			h.retireAccess(t)
			return
		}
		// Write to a Shared line: upgrade through the L3.
		h.cCohUpgrades.Inc()
		h.privateMissEvent(core, blk, true, sim.Cont{H: t, Arg: sim.EventArg{N: acStageRetire}})
		return
	}
	h.cL1Misses.Inc()
	h.k.ScheduleEvent(h.cfg.L2.LatencyCycles, t, sim.EventArg{N: acStageL2})
}

func (h *Hierarchy) accessL2(t *accessTxn) {
	core, blk, write := t.core, t.blk, t.write
	if l := h.l2[core].Lookup(blk); l != nil {
		h.cL2Hits.Inc()
		if !write || l.State >= Exclusive {
			st := l.State
			if write {
				st = Modified
				l.State = Modified
				l.Dirty = true
			}
			h.fillL1(core, blk, st, write)
			h.retireAccess(t)
			return
		}
		h.cCohUpgrades.Inc()
		h.privateMissEvent(core, blk, true, sim.Cont{H: t, Arg: sim.EventArg{N: acStageRetire}})
		return
	}
	h.cL2Misses.Inc()
	h.privateMissEvent(core, blk, write, sim.Cont{H: t, Arg: sim.EventArg{N: acStageRetire}})
	for i := 1; i <= h.cfg.PrefetchDepth; i++ {
		h.prefetchBlock(core, blk+uint64(i))
	}
}

// retireAccess completes an access: it observes the retire latency,
// releases the transaction, and then notifies the caller.
func (h *Hierarchy) retireAccess(t *accessTxn) {
	h.AccessLatency.Observe(int64(h.k.Now() - t.start))
	done := t.done
	h.putAccess(t)
	done.Invoke()
}

// fillL1 installs blk in core's L1, handling the victim writeback into
// the L2 (dirty victims just mark the L2 copy dirty; no data movement is
// modeled between the private levels).
func (h *Hierarchy) fillL1(core int, blk uint64, st State, dirty bool) {
	c := h.l1[core]
	if l := c.Peek(blk); l != nil {
		l.State = st
		l.Dirty = l.Dirty || dirty
		return
	}
	v := c.Victim(blk)
	if v.State != Invalid && v.Dirty {
		if l2 := h.l2[core].Peek(v.Key); l2 != nil {
			l2.Dirty = true
			l2.State = Modified
		}
		h.cL1Writebacks.Inc()
	}
	c.Insert(v, blk, st)
	l := c.Peek(blk)
	l.Dirty = dirty
}

// fillL2 installs blk in core's L2. Dirty victims are written back to
// the L3 over the crossbar (80 B data message); the L1 copy of the
// victim is invalidated to preserve inclusion.
func (h *Hierarchy) fillL2(core int, blk uint64, st State, dirty bool) {
	c := h.l2[core]
	if l := c.Peek(blk); l != nil {
		l.State = st
		l.Dirty = l.Dirty || dirty
		return
	}
	v := c.Victim(blk)
	if v.State != Invalid {
		if l1, ok := h.l1[core].Invalidate(v.Key); ok && l1.Dirty {
			v.Dirty = true
		}
		if v.Dirty {
			h.cL2Writebacks.Inc()
			h.coreOut[core].SendEvent(addr.BlockBytes+h.cfg.PacketHeaderBytes,
				(*l3DirtyNotice)(h), sim.EventArg{N: int64(v.Key)})
		}
	}
	c.Insert(v, blk, st)
	l := c.Peek(blk)
	l.Dirty = dirty
}

// markL3Dirty records a private writeback arriving at the L3. If the
// line has already been evicted (race with an L3 eviction), the data
// goes straight to memory.
func (h *Hierarchy) markL3Dirty(blk uint64) {
	b := h.bankOf(blk)
	if l := h.l3[b].Peek(h.bankKey(blk)); l != nil {
		l.Dirty = true
		return
	}
	h.cL3OrphanWritebacks.Inc()
	h.chain.WriteEvent(blockAddr(blk), sim.Cont{})
}

// prefetchBlock issues a next-line prefetch into core's private caches:
// a normal fill with no waiting consumer. Prefetches skip blocks already
// present or in flight and do not recursively trigger prefetching.
func (h *Hierarchy) prefetchBlock(core int, blk uint64) {
	if h.l1[core].Peek(blk) != nil || h.l2[core].Peek(blk) != nil {
		return
	}
	if _, inFlight := h.privMSHR[core][blk]; inFlight {
		return
	}
	if len(h.privMSHR[core]) >= h.cfg.L2.MSHRs {
		return // never stall demand traffic for a prefetch
	}
	h.cL2Prefetches.Inc()
	h.privateMissEvent(core, blk, false, sim.Cont{})
}

// privateMissEvent merges the request into the core's MSHRs, launching
// an L3 access for the first miss to each block. The launching MSHR is
// a pooled transaction that carries the miss through the crossbar and
// the bank itself (see privMSHR).
func (h *Hierarchy) privateMissEvent(core int, blk uint64, write bool, done sim.Cont) {
	if m, ok := h.privMSHR[core][blk]; ok {
		h.cL2MSHRMerges.Inc()
		m.waiters = append(m.waiters, privWaiter{write: write, done: done})
		return
	}
	if len(h.privMSHR[core]) >= h.cfg.L2.MSHRs {
		h.cL2MSHRStalls.Inc()
		// Parked requests are retried from scratch once a slot frees;
		// the retry recomputes everything.
		h.privPend[core] = append(h.privPend[core], pendReq{blk: blk, write: write, done: done})
		return
	}
	m := h.getPriv()
	m.core = core
	m.blk = blk
	m.write = write
	m.waiters = append(m.waiters, privWaiter{write: write, done: done})
	h.privMSHR[core][blk] = m
	// Request message to the L3 bank over the crossbar.
	h.coreOut[core].SendEvent(h.cfg.PacketHeaderBytes, m, sim.EventArg{N: pmStageAtXbar})
}

// completePrivateMiss sends the data response back to the requesting
// core; the fill happens when it arrives (finishPrivateMiss).
func (h *Hierarchy) completePrivateMiss(m *privMSHR) {
	h.coreIn[m.core].SendEvent(addr.BlockBytes+h.cfg.PacketHeaderBytes, m, sim.EventArg{N: pmStageFill})
}

// finishPrivateMiss fills the core's private caches and retires all
// merged waiters, then admits one parked request and releases the MSHR.
func (h *Hierarchy) finishPrivateMiss(m *privMSHR) {
	core, blk := m.core, m.blk
	if h.privMSHR[core][blk] != m {
		return
	}
	delete(h.privMSHR[core], blk)
	st := Shared
	if m.write {
		st = Modified
	} else if m.exclusive {
		st = Exclusive
	}
	h.fillL2(core, blk, st, m.write)
	h.fillL1(core, blk, st, m.write)
	for _, w := range m.waiters {
		if w.write && !m.write {
			// A store merged into a read miss still needs ownership;
			// replay it (it will hit Shared in L1 and take the upgrade
			// path).
			h.AccessEvent(core, blockAddr(blk), true, w.done)
			continue
		}
		w.done.Invoke()
	}
	h.putPriv(m)
	// Admit one pending request now that a slot is free.
	if head := h.privPendHead[core]; head < len(h.privPend[core]) {
		next := h.privPend[core][head]
		h.privPend[core][head] = pendReq{}
		h.privPendHead[core]++
		if h.privPendHead[core] == len(h.privPend[core]) {
			h.privPend[core] = h.privPend[core][:0]
			h.privPendHead[core] = 0
		}
		h.privateMissEvent(core, next.blk, next.write, next.done)
	}
}

// l3Access looks up the requesting MSHR's block in the L3, resolving
// coherence with other cores' private caches, and schedules the
// response (m.exclusive reports whether the requester will be the sole
// sharer) once the bank can source the data.
func (h *Hierarchy) l3Access(req *privMSHR) {
	core, blk, write := req.core, req.blk, req.write
	if h.OnL3Access != nil {
		h.OnL3Access(blk)
	}
	bank := h.bankOf(blk)
	key := h.bankKey(blk)
	// Join an in-flight fill if one exists.
	if m, ok := h.l3MSHR[bank][blk]; ok {
		h.cL3MSHRMerges.Inc()
		m.waiters = append(m.waiters, req)
		return
	}
	if l := h.l3[bank].Lookup(key); l != nil {
		h.cL3Hits.Inc()
		delay := sim.Cycle(0)
		others := l.Sharers &^ (1 << uint(core))
		if others != 0 {
			if write {
				// Invalidate all other sharers.
				delay = 2 * h.cfg.NoCLatency
				for c := 0; c < h.cfg.Cores; c++ {
					if others&(1<<uint(c)) == 0 {
						continue
					}
					h.cCohInvals.Inc()
					if l1, ok := h.l1[c].Invalidate(blk); ok && l1.Dirty {
						l.Dirty = true
					}
					if l2, ok := h.l2[c].Invalidate(blk); ok && l2.Dirty {
						l.Dirty = true
					}
				}
				l.Sharers = 0
			} else {
				// Downgrade other sharers' E/M copies to Shared so no
				// one can write silently; dirty data is pulled into the
				// bank (costing a snoop round trip).
				for c := 0; c < h.cfg.Cores; c++ {
					if others&(1<<uint(c)) == 0 {
						continue
					}
					dirty := false
					if l1 := h.l1[c].Peek(blk); l1 != nil && l1.State >= Exclusive {
						dirty = dirty || l1.Dirty
						l1.State, l1.Dirty = Shared, false
					}
					if l2 := h.l2[c].Peek(blk); l2 != nil && l2.State >= Exclusive {
						dirty = dirty || l2.Dirty
						l2.State, l2.Dirty = Shared, false
					}
					if dirty {
						h.cCohDowngrades.Inc()
						l.Dirty = true
						delay = 2 * h.cfg.NoCLatency
					}
				}
			}
		}
		if write {
			l.Dirty = true
			l.Sharers = 1 << uint(core)
		} else {
			l.Sharers |= 1 << uint(core)
		}
		req.exclusive = l.Sharers == 1<<uint(core)
		h.k.ScheduleEvent(delay, req, sim.EventArg{N: pmStageRespond})
		return
	}
	h.cL3Misses.Inc()
	if len(h.l3MSHR[bank]) >= h.perBankMSHRs {
		// All MSHRs busy: retry after a short backoff.
		h.cL3MSHRStalls.Inc()
		h.k.ScheduleEvent(h.cfg.L3.LatencyCycles, req, sim.EventArg{N: pmStageLookup})
		return
	}
	m := h.getL3()
	m.bank = bank
	m.blk = blk
	m.waiters = append(m.waiters, req)
	h.l3MSHR[bank][blk] = m
	// Reserve the frame now so racing misses to the same set pick other
	// victims; evict the old occupant first.
	v := h.l3[bank].Victim(key)
	if v.State != Invalid {
		h.evictL3(bank, v)
	}
	h.l3[bank].Insert(v, key, Shared)
	h.chain.ReadEvent(blockAddr(blk), sim.Cont{H: m})
}

// fillL3 runs when the memory read for an L3 miss returns: it installs
// the line's sharers, responds to every merged private miss, and
// releases the MSHR.
func (h *Hierarchy) fillL3(m *l3MSHR) {
	bank, blk := m.bank, m.blk
	key := h.bankKey(blk)
	delete(h.l3MSHR[bank], blk)
	l := h.l3[bank].Peek(key)
	if l == nil {
		// Evicted while in flight (pathological); treat as a fresh
		// bypass fill: respond without caching.
		for _, w := range m.waiters {
			w.exclusive = false
			h.completePrivateMiss(w)
		}
		h.putL3(m)
		return
	}
	for _, w := range m.waiters {
		if w.write {
			l.Dirty = true
			l.Sharers = 1 << uint(w.core)
		} else {
			l.Sharers |= 1 << uint(w.core)
		}
	}
	for _, w := range m.waiters {
		w.exclusive = l.Sharers == 1<<uint(w.core)
		h.completePrivateMiss(w)
	}
	h.putL3(m)
}

// evictL3 removes a victim line from the L3: back-invalidates all
// private copies (inclusion) and writes dirty data to memory.
func (h *Hierarchy) evictL3(bank int, v *Line) {
	blk := v.Key*uint64(h.cfg.L3Banks) + uint64(bank)
	dirty := v.Dirty
	for c := 0; c < h.cfg.Cores; c++ {
		if v.Sharers&(1<<uint(c)) == 0 {
			continue
		}
		h.cL3BackInvals.Inc()
		if l1, ok := h.l1[c].Invalidate(blk); ok && l1.Dirty {
			dirty = true
		}
		if l2, ok := h.l2[c].Invalidate(blk); ok && l2.Dirty {
			dirty = true
		}
	}
	if dirty {
		h.cL3Writebacks.Inc()
		h.chain.WriteEvent(blockAddr(blk), sim.Cont{})
	}
}

// BackWriteback flushes any dirty copy of a's block to main memory while
// letting caches keep clean copies. The PMU issues this before
// offloading a reader PEI (§4.3). done runs when memory holds the latest
// data. Closure form of BackWritebackEvent.
func (h *Hierarchy) BackWriteback(a uint64, done func()) {
	h.BackWritebackEvent(a, sim.Call(done))
}

// BackWritebackEvent is the allocation-free form of BackWriteback.
func (h *Hierarchy) BackWritebackEvent(a uint64, done sim.Cont) {
	h.cPMUBackWritebacks.Inc()
	t := h.getCoh()
	t.a = a
	t.done = done
	h.k.ScheduleEvent(h.cfg.L3.LatencyCycles, t, sim.EventArg{N: cohStageLookup})
}

// BackInvalidate removes a's block from the entire hierarchy, writing
// dirty data to memory first. The PMU issues this before offloading a
// writer PEI (§4.3). done runs when no cache holds the block and memory
// is current. Closure form of BackInvalidateEvent.
func (h *Hierarchy) BackInvalidate(a uint64, done func()) {
	h.BackInvalidateEvent(a, sim.Call(done))
}

// BackInvalidateEvent is the allocation-free form of BackInvalidate.
func (h *Hierarchy) BackInvalidateEvent(a uint64, done sim.Cont) {
	h.cPMUBackInvals.Inc()
	t := h.getCoh()
	t.a = a
	t.inval = true
	t.done = done
	h.k.ScheduleEvent(h.cfg.L3.LatencyCycles, t, sim.EventArg{N: cohStageLookup})
}

// backCohLookup performs the L3-side work of a BackWriteback or
// BackInvalidate after the bank latency: flush (or invalidate) every
// cached copy, then write dirty data to memory before completing.
func (h *Hierarchy) backCohLookup(t *cohTxn) {
	a := t.a
	blk := addr.BlockOf(a)
	bank := h.bankOf(blk)
	dirty := false
	if t.inval {
		if l, ok := h.l3[bank].Invalidate(h.bankKey(blk)); ok {
			dirty = l.Dirty
			for c := 0; c < h.cfg.Cores; c++ {
				if l.Sharers&(1<<uint(c)) == 0 {
					continue
				}
				if l1, ok := h.l1[c].Invalidate(blk); ok && l1.Dirty {
					dirty = true
				}
				if l2, ok := h.l2[c].Invalidate(blk); ok && l2.Dirty {
					dirty = true
				}
			}
		}
	} else if l := h.l3[bank].Peek(h.bankKey(blk)); l != nil {
		if l.Dirty {
			l.Dirty = false
			dirty = true
		}
		for c := 0; c < h.cfg.Cores; c++ {
			if l.Sharers&(1<<uint(c)) == 0 {
				continue
			}
			if l1 := h.l1[c].Peek(blk); l1 != nil && l1.Dirty {
				l1.State, l1.Dirty, dirty = Shared, false, true
			}
			if l2 := h.l2[c].Peek(blk); l2 != nil && l2.Dirty {
				l2.State, l2.Dirty, dirty = Shared, false, true
			}
		}
	}
	if dirty {
		h.chain.WriteEvent(addr.BlockBase(a), sim.Cont{H: t, Arg: sim.EventArg{N: cohStageDone}})
		return
	}
	done := t.done
	h.putCoh(t)
	done.Invoke()
}

// CachedAnywhere reports whether a's block is present at any level (test
// helper and invariant probe).
func (h *Hierarchy) CachedAnywhere(a uint64) bool {
	blk := addr.BlockOf(a)
	if h.l3[h.bankOf(blk)].Peek(h.bankKey(blk)) != nil {
		return true
	}
	for c := 0; c < h.cfg.Cores; c++ {
		if h.l1[c].Peek(blk) != nil || h.l2[c].Peek(blk) != nil {
			return true
		}
	}
	return false
}
