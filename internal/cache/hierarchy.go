package cache

import (
	"pimsim/internal/addr"
	"pimsim/internal/config"
	"pimsim/internal/hmc"
	"pimsim/internal/sim"
	"pimsim/internal/stats"
)

// Hierarchy is the coherent three-level inclusive cache hierarchy:
// per-core private L1D and L2, a crossbar, and a banked shared L3 with
// directory bits (sharer masks) implementing MESI among the private
// caches. Misses go to the HMC chain.
//
// It also provides the two primitives the PMU needs for memory-side PEI
// coherence: BackInvalidate (writer PEIs) and BackWriteback (reader
// PEIs).
type Hierarchy struct {
	k     *sim.Kernel
	cfg   *config.Config
	chain *hmc.Chain
	reg   *stats.Registry

	l1, l2 []*Cache // per core
	l3     []*Cache // per bank

	coreOut []*sim.Link // per-core request port into the crossbar
	coreIn  []*sim.Link // per-core response port out of the crossbar
	bankSrv []*sim.Link // per-bank L3 service port

	privMSHR     []map[uint64]*privMSHR // per core, keyed by block
	privPend     [][]*privReq           // per core, waiting for an MSHR slot
	l3MSHR       []map[uint64]*l3MSHR   // per bank, keyed by block
	perBankMSHRs int

	// Pre-resolved counter handles: every per-event increment on the
	// simulated hot path goes through one of these, never a string key.
	cL1Hits, cL1Misses, cL1Writebacks        stats.Handle
	cL2Hits, cL2Misses, cL2Writebacks        stats.Handle
	cL2Prefetches, cL2MSHRMerges             stats.Handle
	cL2MSHRStalls                            stats.Handle
	cL3Hits, cL3Misses, cL3Writebacks        stats.Handle
	cL3MSHRMerges, cL3MSHRStalls             stats.Handle
	cL3OrphanWritebacks, cL3BackInvals       stats.Handle
	cCohUpgrades, cCohInvals, cCohDowngrades stats.Handle
	cPMUBackWritebacks, cPMUBackInvals       stats.Handle

	// OnL3Access, if non-nil, observes every L3 lookup (hit or miss) by
	// block number. The PMU's locality monitor hangs off this hook.
	OnL3Access func(blk uint64)

	// AccessLatency records the retire latency of every Access call
	// (loads and stores alike), bucketed at L1/L2/L3/memory scales.
	AccessLatency *stats.Histogram
}

type privReq struct {
	write bool
	done  func()
}

type privMSHR struct {
	write   bool // ownership requested when the L3 access was launched
	waiters []*privReq
}

type l3Waiter struct {
	core  int
	write bool
	fill  func(exclusive bool)
}

type l3MSHR struct {
	waiters []l3Waiter
}

// NewHierarchy builds the hierarchy for cfg over the given memory chain.
func NewHierarchy(k *sim.Kernel, cfg *config.Config, chain *hmc.Chain, reg *stats.Registry) *Hierarchy {
	h := &Hierarchy{k: k, cfg: cfg, chain: chain, reg: reg}
	for i := 0; i < cfg.Cores; i++ {
		h.l1 = append(h.l1, New(cfg.L1.Sets(), cfg.L1.Ways))
		h.l2 = append(h.l2, New(cfg.L2.Sets(), cfg.L2.Ways))
		h.coreOut = append(h.coreOut, sim.NewLink(k, cfg.NoCBytesPerCycle, cfg.NoCLatency))
		h.coreIn = append(h.coreIn, sim.NewLink(k, cfg.NoCBytesPerCycle, cfg.NoCLatency))
		h.privMSHR = append(h.privMSHR, make(map[uint64]*privMSHR))
		h.privPend = append(h.privPend, nil)
	}
	setsPerBank := cfg.L3.Sets() / cfg.L3Banks
	for b := 0; b < cfg.L3Banks; b++ {
		h.l3 = append(h.l3, New(setsPerBank, cfg.L3.Ways))
		// A bank accepts one access per 2 CPU cycles (2 GHz array).
		h.bankSrv = append(h.bankSrv, sim.NewLink(k, 0.5, 0))
		h.l3MSHR = append(h.l3MSHR, make(map[uint64]*l3MSHR))
	}
	h.perBankMSHRs = cfg.L3.MSHRs / cfg.L3Banks
	if h.perBankMSHRs < 1 {
		h.perBankMSHRs = 1
	}
	h.AccessLatency = stats.NewHistogram(4, 16, 64, 256, 1024, 4096)
	h.cL1Hits = reg.Counter("l1.hits")
	h.cL1Misses = reg.Counter("l1.misses")
	h.cL1Writebacks = reg.Counter("l1.writebacks")
	h.cL2Hits = reg.Counter("l2.hits")
	h.cL2Misses = reg.Counter("l2.misses")
	h.cL2Writebacks = reg.Counter("l2.writebacks")
	h.cL2Prefetches = reg.Counter("l2.prefetches")
	h.cL2MSHRMerges = reg.Counter("l2.mshr_merges")
	h.cL2MSHRStalls = reg.Counter("l2.mshr_stalls")
	h.cL3Hits = reg.Counter("l3.hits")
	h.cL3Misses = reg.Counter("l3.misses")
	h.cL3Writebacks = reg.Counter("l3.writebacks")
	h.cL3MSHRMerges = reg.Counter("l3.mshr_merges")
	h.cL3MSHRStalls = reg.Counter("l3.mshr_stalls")
	h.cL3OrphanWritebacks = reg.Counter("l3.orphan_writebacks")
	h.cL3BackInvals = reg.Counter("l3.back_invalidations")
	h.cCohUpgrades = reg.Counter("coh.upgrades")
	h.cCohInvals = reg.Counter("coh.invalidations")
	h.cCohDowngrades = reg.Counter("coh.downgrades")
	h.cPMUBackWritebacks = reg.Counter("pmu.back_writebacks")
	h.cPMUBackInvals = reg.Counter("pmu.back_invalidations")
	return h
}

func (h *Hierarchy) bankOf(blk uint64) int     { return int(blk % uint64(h.cfg.L3Banks)) }
func (h *Hierarchy) bankKey(blk uint64) uint64 { return blk / uint64(h.cfg.L3Banks) }
func blockAddr(blk uint64) uint64              { return blk << addr.BlockShift }

// L1 and L2 expose per-core caches; L3Bank exposes a bank (for tests and
// the locality monitor's geometry).
func (h *Hierarchy) L1(core int) *Cache  { return h.l1[core] }
func (h *Hierarchy) L2(core int) *Cache  { return h.l2[core] }
func (h *Hierarchy) L3Bank(b int) *Cache { return h.l3[b] }

// Access performs a load (write=false) or store (write=true) of the
// block containing a on behalf of core. done runs when the access
// retires (data available / ownership granted).
func (h *Hierarchy) Access(core int, a uint64, write bool, done func()) {
	blk := addr.BlockOf(a)
	start := h.k.Now()
	userDone := done
	done = func() {
		h.AccessLatency.Observe(int64(h.k.Now() - start))
		userDone()
	}
	h.k.Schedule(h.cfg.L1.LatencyCycles, func() {
		if l := h.l1[core].Lookup(blk); l != nil {
			h.cL1Hits.Inc()
			if !write || l.State >= Exclusive {
				if write {
					l.State = Modified
					l.Dirty = true
				}
				done()
				return
			}
			// Write to a Shared line: upgrade through the L3.
			h.cCohUpgrades.Inc()
			h.privateMiss(core, blk, true, done)
			return
		}
		h.cL1Misses.Inc()
		h.k.Schedule(h.cfg.L2.LatencyCycles, func() {
			if l := h.l2[core].Lookup(blk); l != nil {
				h.cL2Hits.Inc()
				if !write || l.State >= Exclusive {
					st := l.State
					if write {
						st = Modified
						l.State = Modified
						l.Dirty = true
					}
					h.fillL1(core, blk, st, write)
					done()
					return
				}
				h.cCohUpgrades.Inc()
				h.privateMiss(core, blk, true, done)
				return
			}
			h.cL2Misses.Inc()
			h.privateMiss(core, blk, write, done)
			for i := 1; i <= h.cfg.PrefetchDepth; i++ {
				h.prefetchBlock(core, blk+uint64(i))
			}
		})
	})
}

// fillL1 installs blk in core's L1, handling the victim writeback into
// the L2 (dirty victims just mark the L2 copy dirty; no data movement is
// modeled between the private levels).
func (h *Hierarchy) fillL1(core int, blk uint64, st State, dirty bool) {
	c := h.l1[core]
	if l := c.Peek(blk); l != nil {
		l.State = st
		l.Dirty = l.Dirty || dirty
		return
	}
	v := c.Victim(blk)
	if v.State != Invalid && v.Dirty {
		if l2 := h.l2[core].Peek(v.Key); l2 != nil {
			l2.Dirty = true
			l2.State = Modified
		}
		h.cL1Writebacks.Inc()
	}
	c.Insert(v, blk, st)
	l := c.Peek(blk)
	l.Dirty = dirty
}

// fillL2 installs blk in core's L2. Dirty victims are written back to
// the L3 over the crossbar (80 B data message); the L1 copy of the
// victim is invalidated to preserve inclusion.
func (h *Hierarchy) fillL2(core int, blk uint64, st State, dirty bool) {
	c := h.l2[core]
	if l := c.Peek(blk); l != nil {
		l.State = st
		l.Dirty = l.Dirty || dirty
		return
	}
	v := c.Victim(blk)
	if v.State != Invalid {
		if l1, ok := h.l1[core].Invalidate(v.Key); ok && l1.Dirty {
			v.Dirty = true
		}
		if v.Dirty {
			h.cL2Writebacks.Inc()
			vk := v.Key
			h.coreOut[core].Send(addr.BlockBytes+h.cfg.PacketHeaderBytes, func() {
				h.markL3Dirty(vk)
			})
		}
	}
	c.Insert(v, blk, st)
	l := c.Peek(blk)
	l.Dirty = dirty
}

// markL3Dirty records a private writeback arriving at the L3. If the
// line has already been evicted (race with an L3 eviction), the data
// goes straight to memory.
func (h *Hierarchy) markL3Dirty(blk uint64) {
	b := h.bankOf(blk)
	if l := h.l3[b].Peek(h.bankKey(blk)); l != nil {
		l.Dirty = true
		return
	}
	h.cL3OrphanWritebacks.Inc()
	h.chain.Write(blockAddr(blk), nil)
}

// prefetchBlock issues a next-line prefetch into core's private caches:
// a normal fill with no waiting consumer. Prefetches skip blocks already
// present or in flight and do not recursively trigger prefetching.
func (h *Hierarchy) prefetchBlock(core int, blk uint64) {
	if h.l1[core].Peek(blk) != nil || h.l2[core].Peek(blk) != nil {
		return
	}
	if _, inFlight := h.privMSHR[core][blk]; inFlight {
		return
	}
	if len(h.privMSHR[core]) >= h.cfg.L2.MSHRs {
		return // never stall demand traffic for a prefetch
	}
	h.cL2Prefetches.Inc()
	h.privateMiss(core, blk, false, func() {})
}

// privateMiss merges the request into the core's MSHRs, launching an L3
// access for the first miss to each block.
func (h *Hierarchy) privateMiss(core int, blk uint64, write bool, done func()) {
	r := &privReq{write: write, done: done}
	if m, ok := h.privMSHR[core][blk]; ok {
		h.cL2MSHRMerges.Inc()
		m.waiters = append(m.waiters, r)
		return
	}
	if len(h.privMSHR[core]) >= h.cfg.L2.MSHRs {
		h.cL2MSHRStalls.Inc()
		h.privPend[core] = append(h.privPend[core], &privReq{write: write, done: func() {
			// Retried from scratch once a slot frees.
			h.privateMiss(core, blk, write, done)
		}})
		// Stash the block with the pending request via closure; the
		// retry recomputes everything.
		return
	}
	m := &privMSHR{write: write, waiters: []*privReq{r}}
	h.privMSHR[core][blk] = m
	// Request message to the L3 bank over the crossbar.
	h.coreOut[core].Send(h.cfg.PacketHeaderBytes, func() {
		bank := h.bankOf(blk)
		h.bankSrv[bank].Send(1, func() {
			h.k.Schedule(h.cfg.L3.LatencyCycles, func() {
				h.l3Access(core, blk, m.write, func(exclusive bool) {
					h.completePrivateMiss(core, blk, exclusive)
				})
			})
		})
	})
}

// completePrivateMiss delivers the data response to the core and fills
// its private caches, then retires all merged waiters.
func (h *Hierarchy) completePrivateMiss(core int, blk uint64, exclusive bool) {
	h.coreIn[core].Send(addr.BlockBytes+h.cfg.PacketHeaderBytes, func() {
		m := h.privMSHR[core][blk]
		if m == nil {
			return
		}
		delete(h.privMSHR[core], blk)
		st := Shared
		if m.write {
			st = Modified
		} else if exclusive {
			st = Exclusive
		}
		h.fillL2(core, blk, st, m.write)
		h.fillL1(core, blk, st, m.write)
		for _, w := range m.waiters {
			if w.write && !m.write {
				// A store merged into a read miss still needs
				// ownership; replay it (it will hit Shared in L1 and
				// take the upgrade path).
				wd := w.done
				h.Access(core, blockAddr(blk), true, wd)
				continue
			}
			w.done()
		}
		// Admit one pending request now that a slot is free.
		if len(h.privPend[core]) > 0 {
			next := h.privPend[core][0]
			h.privPend[core] = h.privPend[core][1:]
			next.done()
		}
	})
}

// l3Access looks up blk in the L3, resolving coherence with other cores'
// private caches, and calls respond when the bank can source the data.
// exclusive reports whether the requester will be the sole sharer.
func (h *Hierarchy) l3Access(core int, blk uint64, write bool, respond func(exclusive bool)) {
	if h.OnL3Access != nil {
		h.OnL3Access(blk)
	}
	bank := h.bankOf(blk)
	key := h.bankKey(blk)
	// Join an in-flight fill if one exists.
	if m, ok := h.l3MSHR[bank][blk]; ok {
		h.cL3MSHRMerges.Inc()
		m.waiters = append(m.waiters, l3Waiter{core: core, write: write, fill: respond})
		return
	}
	if l := h.l3[bank].Lookup(key); l != nil {
		h.cL3Hits.Inc()
		delay := sim.Cycle(0)
		others := l.Sharers &^ (1 << uint(core))
		if others != 0 {
			if write {
				// Invalidate all other sharers.
				delay = 2 * h.cfg.NoCLatency
				for c := 0; c < h.cfg.Cores; c++ {
					if others&(1<<uint(c)) == 0 {
						continue
					}
					h.cCohInvals.Inc()
					if l1, ok := h.l1[c].Invalidate(blk); ok && l1.Dirty {
						l.Dirty = true
					}
					if l2, ok := h.l2[c].Invalidate(blk); ok && l2.Dirty {
						l.Dirty = true
					}
				}
				l.Sharers = 0
			} else {
				// Downgrade other sharers' E/M copies to Shared so no
				// one can write silently; dirty data is pulled into the
				// bank (costing a snoop round trip).
				for c := 0; c < h.cfg.Cores; c++ {
					if others&(1<<uint(c)) == 0 {
						continue
					}
					dirty := false
					if l1 := h.l1[c].Peek(blk); l1 != nil && l1.State >= Exclusive {
						dirty = dirty || l1.Dirty
						l1.State, l1.Dirty = Shared, false
					}
					if l2 := h.l2[c].Peek(blk); l2 != nil && l2.State >= Exclusive {
						dirty = dirty || l2.Dirty
						l2.State, l2.Dirty = Shared, false
					}
					if dirty {
						h.cCohDowngrades.Inc()
						l.Dirty = true
						delay = 2 * h.cfg.NoCLatency
					}
				}
			}
		}
		if write {
			l.Dirty = true
			l.Sharers = 1 << uint(core)
		} else {
			l.Sharers |= 1 << uint(core)
		}
		excl := l.Sharers == 1<<uint(core)
		h.k.Schedule(delay, func() { respond(excl) })
		return
	}
	h.cL3Misses.Inc()
	if len(h.l3MSHR[bank]) >= h.perBankMSHRs {
		// All MSHRs busy: retry after a short backoff.
		h.cL3MSHRStalls.Inc()
		h.k.Schedule(h.cfg.L3.LatencyCycles, func() {
			h.l3Access(core, blk, write, respond)
		})
		return
	}
	m := &l3MSHR{waiters: []l3Waiter{{core: core, write: write, fill: respond}}}
	h.l3MSHR[bank][blk] = m
	// Reserve the frame now so racing misses to the same set pick other
	// victims; evict the old occupant first.
	v := h.l3[bank].Victim(key)
	if v.State != Invalid {
		h.evictL3(bank, v)
	}
	h.l3[bank].Insert(v, key, Shared)
	h.chain.Read(blockAddr(blk), func() {
		delete(h.l3MSHR[bank], blk)
		l := h.l3[bank].Peek(key)
		if l == nil {
			// Evicted while in flight (pathological); treat as a fresh
			// bypass fill: respond without caching.
			for _, w := range m.waiters {
				w.fill(false)
			}
			return
		}
		for _, w := range m.waiters {
			if w.write {
				l.Dirty = true
				l.Sharers = 1 << uint(w.core)
			} else {
				l.Sharers |= 1 << uint(w.core)
			}
		}
		for _, w := range m.waiters {
			w.fill(l.Sharers == 1<<uint(w.core))
		}
	})
}

// evictL3 removes a victim line from the L3: back-invalidates all
// private copies (inclusion) and writes dirty data to memory.
func (h *Hierarchy) evictL3(bank int, v *Line) {
	blk := v.Key*uint64(h.cfg.L3Banks) + uint64(bank)
	dirty := v.Dirty
	for c := 0; c < h.cfg.Cores; c++ {
		if v.Sharers&(1<<uint(c)) == 0 {
			continue
		}
		h.cL3BackInvals.Inc()
		if l1, ok := h.l1[c].Invalidate(blk); ok && l1.Dirty {
			dirty = true
		}
		if l2, ok := h.l2[c].Invalidate(blk); ok && l2.Dirty {
			dirty = true
		}
	}
	if dirty {
		h.cL3Writebacks.Inc()
		h.chain.Write(blockAddr(blk), nil)
	}
}

// BackWriteback flushes any dirty copy of a's block to main memory while
// letting caches keep clean copies. The PMU issues this before
// offloading a reader PEI (§4.3). done runs when memory holds the latest
// data.
func (h *Hierarchy) BackWriteback(a uint64, done func()) {
	blk := addr.BlockOf(a)
	bank := h.bankOf(blk)
	h.cPMUBackWritebacks.Inc()
	h.k.Schedule(h.cfg.L3.LatencyCycles, func() {
		dirty := false
		if l := h.l3[bank].Peek(h.bankKey(blk)); l != nil {
			if l.Dirty {
				l.Dirty = false
				dirty = true
			}
			for c := 0; c < h.cfg.Cores; c++ {
				if l.Sharers&(1<<uint(c)) == 0 {
					continue
				}
				if l1 := h.l1[c].Peek(blk); l1 != nil && l1.Dirty {
					l1.State, l1.Dirty, dirty = Shared, false, true
				}
				if l2 := h.l2[c].Peek(blk); l2 != nil && l2.Dirty {
					l2.State, l2.Dirty, dirty = Shared, false, true
				}
			}
		}
		if dirty {
			h.chain.Write(addr.BlockBase(a), done)
			return
		}
		done()
	})
}

// BackInvalidate removes a's block from the entire hierarchy, writing
// dirty data to memory first. The PMU issues this before offloading a
// writer PEI (§4.3). done runs when no cache holds the block and memory
// is current.
func (h *Hierarchy) BackInvalidate(a uint64, done func()) {
	blk := addr.BlockOf(a)
	bank := h.bankOf(blk)
	h.cPMUBackInvals.Inc()
	h.k.Schedule(h.cfg.L3.LatencyCycles, func() {
		dirty := false
		if l, ok := h.l3[bank].Invalidate(h.bankKey(blk)); ok {
			dirty = l.Dirty
			for c := 0; c < h.cfg.Cores; c++ {
				if l.Sharers&(1<<uint(c)) == 0 {
					continue
				}
				if l1, ok := h.l1[c].Invalidate(blk); ok && l1.Dirty {
					dirty = true
				}
				if l2, ok := h.l2[c].Invalidate(blk); ok && l2.Dirty {
					dirty = true
				}
			}
		}
		if dirty {
			h.chain.Write(addr.BlockBase(a), done)
			return
		}
		done()
	})
}

// CachedAnywhere reports whether a's block is present at any level (test
// helper and invariant probe).
func (h *Hierarchy) CachedAnywhere(a uint64) bool {
	blk := addr.BlockOf(a)
	if h.l3[h.bankOf(blk)].Peek(h.bankKey(blk)) != nil {
		return true
	}
	for c := 0; c < h.cfg.Cores; c++ {
		if h.l1[c].Peek(blk) != nil || h.l2[c].Peek(blk) != nil {
			return true
		}
	}
	return false
}
