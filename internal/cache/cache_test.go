package cache

import (
	"testing"
	"testing/quick"
)

func TestLookupMissThenHit(t *testing.T) {
	c := New(4, 2)
	if c.Lookup(10) != nil {
		t.Fatal("unexpected hit in empty cache")
	}
	c.Insert(c.Victim(10), 10, Shared)
	l := c.Lookup(10)
	if l == nil || l.Key != 10 || l.State != Shared {
		t.Fatalf("lookup after insert: %+v", l)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1, 2) // one set, two ways
	c.Insert(c.Victim(0), 0, Shared)
	c.Insert(c.Victim(1), 1, Shared)
	c.Lookup(0) // promote 0; 1 is now LRU
	v := c.Victim(2)
	if v.Key != 1 {
		t.Fatalf("victim key = %d, want 1", v.Key)
	}
}

func TestVictimPrefersInvalid(t *testing.T) {
	c := New(1, 4)
	c.Insert(c.Victim(0), 0, Modified)
	v := c.Victim(1)
	if v.State != Invalid {
		t.Fatal("victim should be an invalid way while one exists")
	}
}

func TestSetIsolation(t *testing.T) {
	c := New(4, 1)
	// Keys 0..3 land in distinct sets; none evict each other.
	for k := uint64(0); k < 4; k++ {
		c.Insert(c.Victim(k), k, Shared)
	}
	for k := uint64(0); k < 4; k++ {
		if c.Peek(k) == nil {
			t.Fatalf("key %d evicted despite distinct sets", k)
		}
	}
	// Key 4 aliases set 0 and evicts key 0 only.
	c.Insert(c.Victim(4), 4, Shared)
	if c.Peek(0) != nil || c.Peek(4) == nil {
		t.Fatal("aliasing eviction wrong")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(2, 2)
	c.Insert(c.Victim(5), 5, Modified)
	c.Peek(5).Dirty = true
	old, ok := c.Invalidate(5)
	if !ok || !old.Dirty || old.State != Modified {
		t.Fatalf("invalidate returned %+v, %v", old, ok)
	}
	if _, ok := c.Invalidate(5); ok {
		t.Fatal("double invalidate reported presence")
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	c := New(1, 2)
	c.Insert(c.Victim(0), 0, Shared)
	c.Insert(c.Victim(1), 1, Shared)
	c.Peek(0) // must not promote
	if v := c.Victim(2); v.Key != 0 {
		t.Fatalf("Peek promoted: victim = %d, want 0", v.Key)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two sets")
		}
	}()
	New(3, 2)
}

// Property: a cache never holds two lines with the same key, and never
// more valid lines than ways per set.
func TestCacheInvariants(t *testing.T) {
	f := func(keys []uint8) bool {
		c := New(4, 2)
		for _, k := range keys {
			key := uint64(k % 32)
			if c.Lookup(key) == nil {
				v := c.Victim(key)
				c.Insert(v, key, Shared)
			}
		}
		seen := map[uint64]int{}
		perSet := map[int]int{}
		ok := true
		c.ForEach(func(setIdx int, l *Line) {
			seen[l.Key]++
			perSet[setIdx]++
			if int(l.Key)&3 != setIdx {
				ok = false // line stored in wrong set
			}
		})
		for _, n := range seen {
			if n > 1 {
				return false
			}
		}
		for _, n := range perSet {
			if n > 2 {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
