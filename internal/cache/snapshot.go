package cache

import (
	"fmt"

	"pimsim/internal/snap"
)

// SnapshotTo serializes the tag array: geometry (verified on restore),
// the LRU clock, hit/miss counters, and every line including its
// unexported LRU stamp — replacement decisions after a resume must
// match the cold run's exactly.
func (c *Cache) SnapshotTo(w *snap.Writer) {
	w.Section("CACH")
	w.Int(c.sets)
	w.Int(c.ways)
	w.U64(c.clock)
	w.I64(c.Hits)
	w.I64(c.Misses)
	for i := range c.lines {
		l := &c.lines[i]
		w.U64(l.Key)
		w.U8(uint8(l.State))
		w.Bool(l.Dirty)
		w.U64(l.Sharers)
		w.U64(l.lru)
	}
}

// RestoreFrom loads tag-array state into a cache of identical geometry.
func (c *Cache) RestoreFrom(r *snap.Reader) {
	r.Section("CACH")
	sets, ways := r.Int(), r.Int()
	if r.Err() != nil {
		return
	}
	if sets != c.sets || ways != c.ways {
		r.Fail(fmt.Errorf("cache: geometry %dx%d, snapshot has %dx%d", c.sets, c.ways, sets, ways))
		return
	}
	c.clock = r.U64()
	c.Hits = r.I64()
	c.Misses = r.I64()
	for i := range c.lines {
		l := &c.lines[i]
		l.Key = r.U64()
		l.State = State(r.U8())
		l.Dirty = r.Bool()
		l.Sharers = r.U64()
		l.lru = r.U64()
	}
}

// SnapshotTo serializes the whole hierarchy: every cache level, the
// crossbar and bank-service links, and the access-latency histogram.
// MSHR files, pend queues, and transaction pools must be empty — an
// in-flight miss at a "quiescent" boundary is a quiescence-protocol bug
// and fails the snapshot.
func (h *Hierarchy) SnapshotTo(w *snap.Writer) {
	w.Section("HIER")
	for core := range h.l1 {
		if n := len(h.privMSHR[core]); n != 0 {
			w.Fail(fmt.Errorf("%w: core %d has %d private MSHRs in flight", snap.ErrNotQuiescent, core, n))
			return
		}
		if h.privPendHead[core] < len(h.privPend[core]) {
			w.Fail(fmt.Errorf("%w: core %d has parked miss requests", snap.ErrNotQuiescent, core))
			return
		}
	}
	for b := range h.l3 {
		if n := len(h.l3MSHR[b]); n != 0 {
			w.Fail(fmt.Errorf("%w: L3 bank %d has %d MSHRs in flight", snap.ErrNotQuiescent, b, n))
			return
		}
	}
	w.Int(len(h.l1))
	w.Int(len(h.l3))
	for core := range h.l1 {
		h.l1[core].SnapshotTo(w)
		h.l2[core].SnapshotTo(w)
		h.coreOut[core].SnapshotTo(w)
		h.coreIn[core].SnapshotTo(w)
	}
	for b := range h.l3 {
		h.l3[b].SnapshotTo(w)
		h.bankSrv[b].SnapshotTo(w)
	}
	h.AccessLatency.SnapshotTo(w)
}

// RestoreFrom loads hierarchy state saved by SnapshotTo. The target
// hierarchy must itself be quiescent — restoring over in-flight misses
// would leave MSHR entries pointing at pre-restore state.
func (h *Hierarchy) RestoreFrom(r *snap.Reader) {
	r.Section("HIER")
	for core := range h.l1 {
		if n := len(h.privMSHR[core]); n != 0 {
			r.Fail(fmt.Errorf("%w: restore target core %d has %d private MSHRs in flight", snap.ErrNotQuiescent, core, n))
			return
		}
		if h.privPendHead[core] < len(h.privPend[core]) {
			r.Fail(fmt.Errorf("%w: restore target core %d has parked miss requests", snap.ErrNotQuiescent, core))
			return
		}
	}
	for b := range h.l3 {
		if n := len(h.l3MSHR[b]); n != 0 {
			r.Fail(fmt.Errorf("%w: restore target L3 bank %d has %d MSHRs in flight", snap.ErrNotQuiescent, b, n))
			return
		}
	}
	cores, banks := r.Int(), r.Int()
	if r.Err() != nil {
		return
	}
	if cores != len(h.l1) || banks != len(h.l3) {
		r.Fail(fmt.Errorf("cache: hierarchy has %d cores / %d banks, snapshot has %d / %d",
			len(h.l1), len(h.l3), cores, banks))
		return
	}
	for core := range h.l1 {
		h.l1[core].RestoreFrom(r)
		h.l2[core].RestoreFrom(r)
		h.coreOut[core].RestoreFrom(r)
		h.coreIn[core].RestoreFrom(r)
	}
	for b := range h.l3 {
		h.l3[b].RestoreFrom(r)
		h.bankSrv[b].RestoreFrom(r)
	}
	h.AccessLatency.RestoreFrom(r)
}
