// Package pimsim_test holds the benchmark harness required by the
// reproduction: one benchmark per table/figure of the paper's evaluation
// (each prints the regenerated rows once, then times the experiment) and
// micro-benchmarks of the simulator's hot structures.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The benchmarks use aggressively scaled inputs so the full suite runs
// in minutes; `cmd/peibench` runs the same experiments at the
// reproduction scale documented in EXPERIMENTS.md.
package pimsim_test

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"pimsim/internal/config"
	"pimsim/internal/harness"
	"pimsim/internal/machine"
	"pimsim/internal/pim"
	"pimsim/internal/sim"
	"pimsim/internal/workloads"
	"pimsim/pei"
)

// benchOptions returns heavily scaled-down options so each figure runs
// in roughly a second. The cache hierarchy is shrunk along with the
// inputs (64 KB L3 against 1/512-scale inputs) so the paper's
// cache-resident-vs-memory-resident crossover still appears; the
// EXPERIMENTS.md reproduction uses cmd/peibench at larger scale.
func benchOptions() harness.Options {
	o := harness.Default()
	o.Scale = 512
	o.OpBudget = 8_000
	o.Pairs = 4
	cfg := config.Scaled()
	cfg.L1 = config.CacheConfig{SizeBytes: 2 << 10, Ways: 4, LatencyCycles: 4, MSHRs: 8}
	cfg.L2 = config.CacheConfig{SizeBytes: 8 << 10, Ways: 8, LatencyCycles: 12, MSHRs: 8}
	cfg.L3 = config.CacheConfig{SizeBytes: 64 << 10, Ways: 16, LatencyCycles: 30, MSHRs: 32}
	cfg.L3Banks = 4
	o.Cfg = cfg
	return o
}

// bctx is the background context shared by the benchmarks.
var bctx = context.Background()

var printOnce sync.Map

// printTables renders tables once per benchmark name.
func printTables(name string, tables ...*harness.Table) {
	if _, loaded := printOnce.LoadOrStore(name, true); loaded {
		return
	}
	for _, t := range tables {
		t.Render(os.Stdout)
	}
}

func benchFigure(b *testing.B, name string, run func(r *harness.Runner) ([]*harness.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchOptions())
		tables, err := run(r)
		if err != nil {
			b.Fatal(err)
		}
		printTables(name, tables...)
	}
}

func one(t *harness.Table, err error) ([]*harness.Table, error) {
	return []*harness.Table{t}, err
}

func BenchmarkFig2(b *testing.B) {
	// The nine-graph sweep needs extra shrinking to stay within a bench
	// iteration.
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Scale = 4096
		o.OpBudget = 2_000
		r := harness.NewRunner(o)
		t, err := r.Fig2(bctx)
		if err != nil {
			b.Fatal(err)
		}
		printTables("fig2", t)
	}
}

func BenchmarkFig6Small(b *testing.B) {
	benchFigure(b, "fig6s", func(r *harness.Runner) ([]*harness.Table, error) {
		return one(r.Fig6(bctx, workloads.Small))
	})
}

func BenchmarkFig6Medium(b *testing.B) {
	benchFigure(b, "fig6m", func(r *harness.Runner) ([]*harness.Table, error) {
		return one(r.Fig6(bctx, workloads.Medium))
	})
}

func BenchmarkFig6Large(b *testing.B) {
	benchFigure(b, "fig6l", func(r *harness.Runner) ([]*harness.Table, error) {
		return one(r.Fig6(bctx, workloads.Large))
	})
}

func BenchmarkFig7(b *testing.B) {
	benchFigure(b, "fig7", func(r *harness.Runner) ([]*harness.Table, error) {
		return one(r.Fig7(bctx, workloads.Large))
	})
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Scale = 4096
		o.OpBudget = 2_000
		r := harness.NewRunner(o)
		t, err := r.Fig8(bctx)
		if err != nil {
			b.Fatal(err)
		}
		printTables("fig8", t)
	}
}

func BenchmarkFig9(b *testing.B) {
	benchFigure(b, "fig9", func(r *harness.Runner) ([]*harness.Table, error) {
		return one(r.Fig9(bctx))
	})
}

func BenchmarkFig10(b *testing.B) {
	benchFigure(b, "fig10", func(r *harness.Runner) ([]*harness.Table, error) {
		return one(r.Fig10(bctx))
	})
}

func BenchmarkFig11a(b *testing.B) {
	benchFigure(b, "fig11a", func(r *harness.Runner) ([]*harness.Table, error) {
		return one(r.Fig11a(bctx))
	})
}

func BenchmarkFig11b(b *testing.B) {
	benchFigure(b, "fig11b", func(r *harness.Runner) ([]*harness.Table, error) {
		return one(r.Fig11b(bctx))
	})
}

func BenchmarkSec76(b *testing.B) {
	benchFigure(b, "sec76", func(r *harness.Runner) ([]*harness.Table, error) {
		return one(r.Sec76(bctx))
	})
}

func BenchmarkFig12(b *testing.B) {
	benchFigure(b, "fig12", func(r *harness.Runner) ([]*harness.Table, error) {
		return one(r.Fig12(bctx, workloads.Small))
	})
}

// ---- Simulator micro-benchmarks ----

// BenchmarkKernelEvents measures raw event throughput of the discrete-
// event kernel: the quantity that bounds overall simulation speed.
func BenchmarkKernelEvents(b *testing.B) {
	k := sim.NewKernel()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			k.Schedule(1, tick)
		}
	}
	b.ResetTimer()
	k.Schedule(1, tick)
	k.Run()
}

// BenchmarkKernelEventsHandler is the same event chain driven through
// the allocation-free handler API (ScheduleEvent with a typed handler
// instead of a closure); CI pins its allocs/op at zero.
func BenchmarkKernelEventsHandler(b *testing.B) {
	k := sim.NewKernel()
	h := &chainTick{k: k, limit: int64(b.N)}
	b.ResetTimer()
	k.ScheduleEvent(1, h, sim.EventArg{})
	k.Run()
}

type chainTick struct {
	k     *sim.Kernel
	n     int64
	limit int64
}

func (t *chainTick) OnEvent(sim.EventArg) {
	t.n++
	if t.n < t.limit {
		t.k.ScheduleEvent(1, t, sim.EventArg{})
	}
}

// BenchmarkHierarchyAccess measures one cache access through the full
// coherent hierarchy (mixed hits and misses).
func BenchmarkHierarchyAccess(b *testing.B) {
	m := machine.MustNew(config.Scaled(), pim.HostOnly)
	b.ResetTimer()
	done := 0
	for i := 0; i < b.N; i++ {
		a := uint64(i%8192) * 64
		m.Hier.Access(i%4, a, i%5 == 0, func() { done++ })
		if i%64 == 63 {
			m.K.Run()
		}
	}
	m.K.Run()
	if done != b.N {
		b.Fatalf("completed %d of %d", done, b.N)
	}
}

// BenchmarkPEIHostSide and BenchmarkPEIMemorySide measure the end-to-end
// cost of simulating one PEI on each path.
func benchmarkPEI(b *testing.B, mode pim.Mode) {
	m := machine.MustNew(config.Scaled(), mode)
	blocks := b.N
	if blocks > 65536 {
		blocks = 65536
	}
	base := m.Store.Alloc(blocks*64, 64)
	done := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &pim.PEI{Op: pim.OpInc64, Target: base + uint64(i%blocks)*64, Done: func() { done++ }}
		m.PMU.Issue(p)
		if i%32 == 31 {
			m.K.Run()
		}
	}
	m.K.Run()
	if done != b.N {
		b.Fatalf("completed %d of %d", done, b.N)
	}
}

func BenchmarkPEIHostSide(b *testing.B)   { benchmarkPEI(b, pim.HostOnly) }
func BenchmarkPEIMemorySide(b *testing.B) { benchmarkPEI(b, pim.PIMOnly) }

// BenchmarkPageRankSimulation measures whole-workload simulation speed
// (simulated PageRank per wall-clock second).
func BenchmarkPageRankSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := pei.WorkloadParams{Threads: 4, Size: pei.Small, Scale: 512}
		res, err := pei.RunWorkload(pei.ScaledConfig(), pei.LocalityAware, "pr", p, false)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("pagerank: %d simulated cycles, %d PEIs\n", res.Cycles, res.PEIs)
		}
	}
}

// BenchmarkAblations runs the extension ablations of DESIGN.md §6:
// ignore bit, partial tag width, directory size, dispatch window, and
// interleave granularity.
func BenchmarkAblations(b *testing.B) {
	benchFigure(b, "ablations", func(r *harness.Runner) ([]*harness.Table, error) {
		var tables []*harness.Table
		for _, f := range []func(context.Context) (*harness.Table, error){
			r.AblationIgnoreBit, r.AblationPartialTagWidth,
			r.AblationDirectorySize, r.AblationDispatchWindow,
			r.AblationInterleave, r.AblationPrefetcher,
			r.ComparisonHMC2,
		} {
			t, err := f(bctx)
			if err != nil {
				return nil, err
			}
			tables = append(tables, t)
		}
		return tables, nil
	})
}
